// Chaos scenario: the same heterogeneous batch run twice — once on a
// healthy virtualized cluster, once under a seeded fault schedule (two host
// crashes with reboots, a Poisson task-failure stream, and a live migration
// whose destination dies mid pre-copy). The point is graceful degradation:
// the chaos run must complete (no hangs, every job finished or deliberately
// failed) with a bounded makespan stretch, replication back at the
// configured factor, and all the recovery counters accounted for.
//
// Usage: bench_faults [--seed N] [--out FILE]
// --out writes the chaos run's full report JSON; two runs with the same
// seed must produce byte-identical files (CI diffs them).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/table.h"
#include "harness/testbed.h"
#include "workload/benchmarks.h"

namespace {

using namespace hybridmr;

struct Outcome {
  int jobs_ok = 0;
  int jobs_failed = 0;
  double makespan_s = 0;
  int requeues = 0;
  int attempt_failures = 0;
  int maps_reexecuted = 0;
  double re_replicated_mb = 0;
  int crashes = 0;
  int reboots = 0;
  int migrations_aborted = 0;
  std::string report_json;
};

Outcome run_scenario(std::uint64_t seed, bool chaos) {
  harness::TestBed::Options o;
  o.seed = seed;
  // Stock Hadoop replication: with RF 3 over 12 DataNodes a single host
  // crash (2 co-hosted VMs) can never take a block's last replica, so the
  // scenario measures recovery cost, not unlucky placement.
  o.calibration.hdfs_replicas = 3;
  if (chaos) {
    // Two host crashes (each takes down 2 VMs: trackers, DataNodes and
    // any replica they held), both rebooting a minute later...
    o.faults.one_shot.push_back({faults::FaultSpec::Kind::kMachineCrash,
                                 /*at=*/30.0, "vhost1", sim::Duration{60.0}});
    o.faults.one_shot.push_back({faults::FaultSpec::Kind::kMachineCrash,
                                 /*at=*/90.0, "vhost3", sim::Duration{60.0}});
    // ...the migration destination dying mid pre-copy...
    o.faults.one_shot.push_back({faults::FaultSpec::Kind::kMachineCrash,
                                 /*at=*/15.0, "plain1", sim::Duration{45.0}});
    // ...plus a background stream of attempt failures. The horizon keeps
    // the stream from re-arming forever once the batch drains.
    o.faults.task_failure_rate = 0.02;
    o.faults.rate_horizon_s = 240;
    o.faults.seed = seed ^ 0x9e3779b9;
  }
  harness::TestBed bed(o);
  bed.add_virtual_nodes(/*hosts=*/6, /*vms_per_host=*/2);
  auto plains = bed.add_plain_machines(2);
  cluster::VirtualMachine* stray = bed.add_plain_vm(*plains[0]);

  // A migration in flight when "plain1" dies at t=15: an idle 1 GB guest
  // pre-copies for ~100 s, so the abort lands mid pre-copy.
  bed.sim().at(10.0, [&] {
    bed.cluster().migrator().migrate(*stray, *plains[1]);
  });

  std::vector<mapred::JobSpec> specs{
      workload::sort_job().with_input_gb(2.0),
      workload::dist_grep().with_input_gb(4.0),
      workload::wcount().with_input_gb(2.0),
  };
  bed.run_jobs(specs);

  Outcome out;
  for (const auto& job : bed.mr().jobs()) {
    if (job->succeeded()) ++out.jobs_ok;
    if (job->failed()) ++out.jobs_failed;
    out.makespan_s = std::max(out.makespan_s, job->finish_time());
  }
  out.requeues = bed.mr().requeued();
  out.attempt_failures = bed.mr().attempt_failures();
  out.maps_reexecuted = bed.mr().maps_reexecuted();
  out.re_replicated_mb = bed.hdfs().re_replicated_mb().value();
  if (bed.faults() != nullptr) {
    out.crashes = bed.faults()->stats().machine_crashes;
    out.reboots = bed.faults()->stats().machine_reboots;
    out.migrations_aborted = bed.faults()->stats().migrations_aborted;
  }
  std::ostringstream os;
  bed.report().to_json(os);
  out.report_json = os.str();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_faults [--seed N] [--out FILE]\n");
      return 2;
    }
  }

  harness::banner("Chaos: batch under crashes, retries and aborted moves");
  const Outcome base = run_scenario(seed, /*chaos=*/false);
  const Outcome chaos = run_scenario(seed, /*chaos=*/true);

  harness::Table table({"scenario", "jobs_ok", "jobs_failed", "makespan_s",
                        "requeues", "task_failures", "maps_reexec",
                        "rereplicated_mb", "crashes/reboots",
                        "moves_aborted"});
  auto row = [&](const char* name, const Outcome& o) {
    table.row({name, std::to_string(o.jobs_ok), std::to_string(o.jobs_failed),
               harness::Table::num(o.makespan_s),
               std::to_string(o.requeues), std::to_string(o.attempt_failures),
               std::to_string(o.maps_reexecuted),
               harness::Table::num(o.re_replicated_mb, 0),
               std::to_string(o.crashes) + "/" + std::to_string(o.reboots),
               std::to_string(o.migrations_aborted)});
  };
  row("healthy", base);
  row("chaos", chaos);
  table.print();

  const double stretch =
      base.makespan_s > 0 ? chaos.makespan_s / base.makespan_s : 0;
  std::printf("\nmakespan stretch under chaos: %.2fx\n", stretch);

  // Graceful degradation, not collapse: the run finished (or we would not
  // be here), every job reached a terminal state, and recovery actually
  // ran. Exit non-zero so CI catches a chaos scenario that stopped biting.
  const int total = chaos.jobs_ok + chaos.jobs_failed;
  if (total != 3 || chaos.crashes == 0 || chaos.migrations_aborted == 0) {
    std::fprintf(stderr,
                 "bench_faults: chaos run degenerated (terminal jobs %d/3, "
                 "crashes %d, aborts %d)\n",
                 total, chaos.crashes, chaos.migrations_aborted);
    return 1;
  }

  if (out_path != nullptr) {
    std::ofstream f(out_path);
    if (!f) {
      std::fprintf(stderr, "bench_faults: cannot write %s\n", out_path);
      return 1;
    }
    f << chaos.report_json;
    std::printf("bench_faults: wrote %s\n", out_path);
  }
  return 0;
}
