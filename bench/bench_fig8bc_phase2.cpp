// Figure 8(b,c): % reduction in JCT from Phase II dynamic resource
// orchestration on the virtual cluster, per managed-resource mode
// (CPU / Memory / I/O / all three) — single job (b) and six concurrent
// jobs (c).
#include "common.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

constexpr int kHosts = 8;
constexpr double kScale = 0.25;  // shrink inputs: same contention, fast runs

std::vector<mapred::JobSpec> scaled_benchmarks() {
  std::vector<mapred::JobSpec> out;
  for (const auto& b : workload::all_benchmarks()) {
    out.push_back(b.input_gb > 2 ? b.with_input_gb(b.input_gb * kScale) : b);
  }
  return out;
}

/// Runs `specs` on the virtual cluster; DRM configured per flags
/// (nullptr drm = stock Hadoop). Returns each job's JCT.
std::vector<double> run(const std::vector<mapred::JobSpec>& specs,
                        const core::DrmOptions* drm_options) {
  TestBed bed;
  bed.add_virtual_nodes(kHosts, 2);
  core::Estimator estimator;
  std::unique_ptr<core::DynamicResourceManager> drm;
  if (drm_options != nullptr) {
    drm = std::make_unique<core::DynamicResourceManager>(
        bed.sim(), bed.mr(), bed.cluster(), estimator, *drm_options);
    drm->start();
  }
  std::vector<mapred::Job*> jobs;
  for (const auto& spec : specs) jobs.push_back(bed.mr().submit(spec));
  bool all_done = false;
  while (!all_done) {
    bed.sim().run_until(bed.sim().now() + 300);
    all_done = true;
    for (auto* j : jobs) all_done = all_done && j->finished();
  }
  if (drm) drm->stop();
  std::vector<double> jcts;
  for (auto* j : jobs) jcts.push_back(j->jct());
  return jcts;
}

core::DrmOptions mode(bool cpu, bool mem, bool io) {
  core::DrmOptions o;
  o.manage_cpu = cpu;
  o.manage_memory = mem;
  o.manage_io = io;
  return o;
}

void print_reduction_table(const char* title, bool concurrent) {
  harness::banner(title);
  Table table({"benchmark", "CPU", "Memory", "I/O", "CPU+Mem+I/O"});
  const auto benchmarks = scaled_benchmarks();

  const std::vector<core::DrmOptions> modes = {
      mode(true, false, false), mode(false, true, false),
      mode(false, false, true), mode(true, true, true)};

  if (concurrent) {
    const auto base = run(benchmarks, nullptr);
    std::vector<std::vector<double>> managed;
    for (const auto& m : modes) managed.push_back(run(benchmarks, &m));
    for (std::size_t j = 0; j < benchmarks.size(); ++j) {
      std::vector<std::string> row{benchmarks[j].name};
      for (std::size_t k = 0; k < modes.size(); ++k) {
        row.push_back(
            Table::pct((base[j] - managed[k][j]) / base[j]));
      }
      table.row(row);
    }
  } else {
    for (const auto& spec : benchmarks) {
      const double base = run({spec}, nullptr)[0];
      std::vector<std::string> row{spec.name};
      for (const auto& m : modes) {
        const double managed = run({spec}, &m)[0];
        row.push_back(Table::pct((base - managed) / base));
      }
      table.row(row);
    }
  }
  table.print();
}

}  // namespace

int main() {
  print_reduction_table(
      "Figure 8(b): % reduction in JCT with Phase II resource orchestration "
      "(single job on the virtual cluster; 16 VMs on 8 PMs)",
      /*concurrent=*/false);
  print_reduction_table(
      "Figure 8(c): % reduction in JCT, six benchmarks running concurrently",
      /*concurrent=*/true);
  std::printf(
      "\n  paper: CPU+Mem+I/O strongest; single-job avg ~22%% (max 29%%), "
      "concurrent avg ~28.5%% (max 40.8%%)\n");
  return 0;
}
