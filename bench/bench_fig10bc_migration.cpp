// Figure 10(b,c): live migration of Hadoop VMs — per-VM migration time and
// downtime when migrating all 24 VMs of a cluster, idle vs running Wcount,
// with 0.5 GB and 1 GB guests.
#include "common.h"

#include "cluster/migration.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

struct MigrationSeries {
  std::vector<double> time_s;
  std::vector<double> downtime_ms;
};

MigrationSeries migrate_all(double vm_memory_mb, bool loaded) {
  TestBed bed;
  // 24 Hadoop VMs on 12 hosts plus 12 spare hosts as migration targets.
  std::vector<cluster::VirtualMachine*> vms;
  for (auto* host : bed.add_plain_machines(12)) {
    for (int i = 0; i < 2; ++i) {
      auto* vm = bed.cluster().add_vm(*host, "", sim::CoreShare{1.0},
                                      sim::MegaBytes{vm_memory_mb});
      bed.hdfs().add_datanode(*vm);
      bed.mr().add_tracker(*vm);
      vms.push_back(vm);
    }
  }
  auto spares = bed.add_plain_machines(12);

  if (loaded) {
    bed.mr().submit(workload::wcount().with_input_gb(16));
    bed.sim().run_until(30);  // let the job spin up
  }

  MigrationSeries series;
  series.time_s.resize(vms.size());
  series.downtime_ms.resize(vms.size());
  // Migrate every VM once, lightly staggered so the loaded runs migrate
  // while Wcount is actually executing.
  for (std::size_t i = 0; i < vms.size(); ++i) {
    bed.sim().at(bed.sim().now() + 5 + 10.0 * i, [&, i]() {
      bed.cluster().migrator().migrate(
          *vms[i], *spares[i % spares.size()],
          [&, i](const cluster::MigrationRecord& r) {
            series.time_s[i] = r.precopy_seconds.value();
            series.downtime_ms[i] = r.downtime_seconds.value() * 1000.0;
          });
    });
  }
  bed.run_until(bed.sim().now() + 10.0 * vms.size() + 2400);
  return series;
}

}  // namespace

int main() {
  const auto idle_half = migrate_all(512, false);
  const auto idle_full = migrate_all(1024, false);
  const auto load_half = migrate_all(512, true);
  const auto load_full = migrate_all(1024, true);

  harness::banner(
      "Figure 10(b): VM migration time (s) per node index "
      "(idle vs running Wcount; 0.5 GB and 1 GB guests)");
  Table fig10b({"node", "Idle-0.5GB", "Idle-1GB", "Wcount-0.5GB",
                "Wcount-1GB"});
  for (std::size_t i = 0; i < idle_half.time_s.size(); i += 2) {
    fig10b.row({std::to_string(i), Table::num(idle_half.time_s[i]),
                Table::num(idle_full.time_s[i]),
                Table::num(load_half.time_s[i]),
                Table::num(load_full.time_s[i])});
  }
  fig10b.print();

  harness::banner("Figure 10(c): VM downtime (ms) per node index");
  Table fig10c({"node", "Idle-1GB", "Wcount-0.5GB", "Wcount-1GB"});
  for (std::size_t i = 0; i < idle_full.downtime_ms.size(); i += 2) {
    fig10c.row({std::to_string(i), Table::num(idle_full.downtime_ms[i], 0),
                Table::num(load_half.downtime_ms[i], 0),
                Table::num(load_full.downtime_ms[i], 0)});
  }
  fig10c.print();
  std::printf(
      "\n  paper: migration time grows with memory and with guest load; "
      "downtime is erratic under load but bounded, and jobs still finish\n");
  return 0;
}
