// Figure 8(a): performance gain from HybridMR's Phase I placement over
// random (FCFS) placement, for the three workload mixes wmix-1/2/3
// (50/50, 20/80, 80/20 interactive vs batch).
#include "common.h"

#include "stats/summary.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

struct MixOutcome {
  double batch_mean_jct = 0;
  double interactive_mean_rt = 0;
};

MixOutcome run_mix(int wmix, bool use_phase1, std::uint64_t seed) {
  TestBed::Options bed_options;
  bed_options.seed = seed;
  TestBed bed(bed_options);
  bed.add_native_nodes(6);
  bed.add_virtual_nodes(4, 2);
  // Interactive VMs live on the same virtualized hosts as the batch VMs —
  // the hybrid premise. Batch placement therefore determines how much
  // interference the tenants see.
  std::vector<cluster::VirtualMachine*> app_vms;
  for (const auto& m : bed.cluster().machines()) {
    if (m->name().rfind("vhost", 0) == 0) {
      app_vms.push_back(bed.add_plain_vm(*m));
    }
  }

  core::HybridMROptions options;
  options.enable_phase1 = use_phase1;
  options.phase1.training_cluster_sizes = {2};
  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr(), options);
  hybrid.start();

  auto mix_options = workload::wmix_options(wmix);
  mix_options.total_entries = 10;
  mix_options.batch_input_scale = 0.2;
  mix_options.horizon_s = 200;
  mix_options.clients_min = 200;
  mix_options.clients_max = 600;
  sim::Rng mix_rng(seed);
  const auto entries = workload::make_mix(mix_rng, mix_options);

  std::vector<mapred::Job*> jobs;
  std::vector<interactive::InteractiveApp*> apps;
  sim::Rng coin(seed + 1);
  for (const auto& entry : entries) {
    bed.sim().at(entry.arrival_s, [&, entry]() {
      if (entry.is_batch) {
        if (use_phase1) {
          jobs.push_back(hybrid.submit(entry.job));
        } else {
          // Random placement: a coin flip between the two partitions.
          const auto pool = coin.bernoulli(0.5)
                                ? mapred::PlacementPool::kNativeOnly
                                : mapred::PlacementPool::kVirtualOnly;
          jobs.push_back(bed.mr().submit(entry.job, pool));
        }
      } else {
        cluster::ExecutionSite* site =
            app_vms[apps.size() % app_vms.size()];
        apps.push_back(
            &hybrid.deploy_interactive(entry.app, entry.clients, site));
      }
    });
  }

  bed.run_until(2500);
  hybrid.stop();

  MixOutcome out;
  std::vector<double> jcts;
  for (auto* j : jobs) {
    if (j->finished()) jcts.push_back(j->jct());
  }
  out.batch_mean_jct = stats::mean(jcts);
  std::vector<double> rts;
  for (auto* a : apps) {
    // Tail latency: the paper's placement gains show up in how often the
    // tenants are dragged over their knee by collocated batch work.
    rts.push_back(stats::percentile(a->response_series().values(), 95));
    a->stop();
  }
  out.interactive_mean_rt = stats::mean(rts);
  return out;
}

}  // namespace

int main() {
  harness::banner(
      "Figure 8(a): performance gain of Phase I placement vs random "
      "placement (gain = 1 - hybridmr/random)");
  Table table({"mix", "interactive share", "transactional gain",
               "batch gain"});
  const char* shares[] = {"", "50%", "20%", "80%"};
  for (int wmix : {1, 2, 3}) {
    double t_gain = 0;
    double b_gain = 0;
    int n = 0;
    for (std::uint64_t seed : {11u, 22u, 33u}) {
      const auto random_placed = run_mix(wmix, false, seed);
      const auto phase1 = run_mix(wmix, true, seed);
      if (random_placed.interactive_mean_rt > 0) {
        t_gain += 1.0 - phase1.interactive_mean_rt /
                            random_placed.interactive_mean_rt;
      }
      if (random_placed.batch_mean_jct > 0) {
        b_gain += 1.0 - phase1.batch_mean_jct / random_placed.batch_mean_jct;
      }
      ++n;
    }
    table.row({"wmix-" + std::to_string(wmix), shares[wmix],
               Table::num(t_gain / n, 3), Table::num(b_gain / n, 3)});
  }
  table.print();
  std::printf(
      "  paper: both classes gain, magnitude varies with the mix "
      "(Fig. 8(a) bars ~0.1-0.45)\n");
  return 0;
}
