// End-to-end scale sweep: a fig8-class heterogeneous batch (sort + grep +
// wordcount) on a virtualized cluster, swept from the paper's 24 physical
// machines up to 384. Reports host wall-clock per sweep point plus simulated
// event throughput, and emits a google-benchmark-shaped JSON file that
// scripts/perf_gate.py compares against the committed BENCH_scale.json.
//
// With --profile FILE the sweep additionally runs with the simulation
// profiler enabled and writes one profile JSON (work counters, wall-time
// hotspots, calling-context tree) per sweep point, keyed "scale/N" — the
// input format of scripts/profile_report.py. --heartbeat-s / --wall-budget-s
// arm the stall watchdog; a watchdog stall exits with code 3 so a hung
// sweep fails loudly instead of spinning forever. Without --profile the
// behaviour (and thus the perf-gate measurement) is byte-identical to
// before the profiler existed.
//
// Usage: bench_scale [--sizes 24,96,384] [--seed N] [--out FILE]
//                    [--profile FILE] [--heartbeat-s S] [--wall-budget-s S]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/testbed.h"
#include "workload/benchmarks.h"

namespace {

using namespace hybridmr;

// A benchmark harness is the one place where wall-clock time is the
// measurand rather than a determinism hazard: nothing inside the simulation
// ever sees these readings.
using WallClock = std::chrono::steady_clock;  // sim-lint: allow(wall-clock)

struct ProfileOptions {
  bool enabled = false;
  double heartbeat_s = 0;
  double wall_budget_s = 0;
};

struct SweepPoint {
  int pms = 0;
  int jobs = 0;
  double wall_ms = 0;
  double sim_end_s = 0;
  std::size_t events = 0;
  std::string profile_json;  // empty unless profiled
  bool stalled = false;
};

SweepPoint run_point(int pms, std::uint64_t seed, const ProfileOptions& prof) {
  harness::TestBed::Options opt;
  opt.seed = seed;
  // Telemetry off: the sweep measures the scheduling/allocation core, and
  // both the committed baseline and the gate run use the same setting.
  opt.telemetry = false;
  opt.profile = prof.enabled;
  opt.watchdog.heartbeat_every_s = prof.heartbeat_s;
  opt.watchdog.wall_budget_s = prof.wall_budget_s;
  harness::TestBed bed(opt);
  bed.add_virtual_nodes(pms, /*vms_per_host=*/2);

  // Fig. 8-class heterogeneous batch, scaled with the cluster so per-node
  // work stays constant: one I/O-bound sort, one I/O-bound grep and one
  // memory+I/O wordcount wave per 8 hosts.
  std::vector<mapred::JobSpec> specs;
  const int waves = pms / 8;
  for (int i = 0; i < waves; ++i) {
    specs.push_back(workload::sort_job().with_input_gb(2.0));
    specs.push_back(workload::dist_grep().with_input_gb(4.0));
    specs.push_back(workload::wcount().with_input_gb(2.0));
  }

  const auto t0 = WallClock::now();
  bed.run_jobs(specs);
  const std::chrono::duration<double, std::milli> wall = WallClock::now() - t0;

  SweepPoint p;
  p.pms = pms;
  p.jobs = static_cast<int>(specs.size());
  p.wall_ms = wall.count();
  p.sim_end_s = bed.sim().now();
  p.events = bed.sim().events_processed();
  if (telemetry::Profiler* profiler = bed.profiler()) {
    std::ostringstream os;
    profiler->to_json(os, /*include_wall=*/true);
    p.profile_json = os.str();
    p.stalled = profiler->stalled();
    std::printf("--- scale/%d hotspots ---\n", pms);
    profiler->print_hotspots(std::cout);
  }
  return p;
}

std::vector<int> parse_sizes(const char* csv) {
  std::vector<int> out;
  int value = 0;
  bool have = false;
  for (const char* c = csv;; ++c) {
    if (*c >= '0' && *c <= '9') {
      value = value * 10 + (*c - '0');
      have = true;
    } else {
      if (have) out.push_back(value);
      value = 0;
      have = false;
      if (*c == '\0') break;
    }
  }
  return out;
}

void write_json(const char* path, const std::vector<SweepPoint>& points) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"name\": \"scale/%d\", \"real_time\": %.3f, "
                 "\"time_unit\": \"ms\", \"jobs\": %d, \"events\": %zu, "
                 "\"events_per_sec\": %.1f, \"sim_end_s\": %.3f}%s\n",
                 p.pms, p.wall_ms, p.jobs, p.events,
                 p.wall_ms > 0 ? 1000.0 * static_cast<double>(p.events) /
                                     p.wall_ms
                               : 0.0,
                 p.sim_end_s, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("bench_scale: wrote %s\n", path);
}

// One profile object per sweep point, keyed by the benchmark name — the
// format scripts/profile_report.py consumes.
void write_profiles(const char* path, const std::vector<SweepPoint>& points) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", path);
    return;
  }
  f << "{\n";
  bool first = true;
  for (const auto& p : points) {
    if (p.profile_json.empty()) continue;
    if (!first) f << ",\n";
    first = false;
    f << "\"scale/" << p.pms << "\":" << p.profile_json;
  }
  f << "\n}\n";
  std::printf("bench_scale: wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes{24, 96, 384};
  std::uint64_t seed = 42;
  const char* out = "BENCH_scale.json";
  ProfileOptions prof;
  const char* profile_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sizes") == 0 && i + 1 < argc) {
      sizes = parse_sizes(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      prof.enabled = true;
      profile_out = argv[++i];
    } else if (std::strcmp(argv[i], "--heartbeat-s") == 0 && i + 1 < argc) {
      prof.heartbeat_s = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--wall-budget-s") == 0 && i + 1 < argc) {
      prof.wall_budget_s = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_scale [--sizes CSV] [--seed N] [--out FILE] "
                   "[--profile FILE] [--heartbeat-s S] [--wall-budget-s S]\n");
      return 2;
    }
  }

  std::vector<SweepPoint> points;
  bool stalled = false;
  std::printf("%6s %6s %12s %12s %14s %12s\n", "pms", "jobs", "wall_ms",
              "sim_end_s", "events", "events/sec");
  for (int pms : sizes) {
    const SweepPoint p = run_point(pms, seed, prof);
    std::printf("%6d %6d %12.1f %12.1f %14zu %12.0f\n", p.pms, p.jobs,
                p.wall_ms, p.sim_end_s, p.events,
                p.wall_ms > 0
                    ? 1000.0 * static_cast<double>(p.events) / p.wall_ms
                    : 0.0);
    points.push_back(p);
    if (p.stalled) {
      stalled = true;
      break;  // the watchdog stopped the sim mid-run; larger points would too
    }
  }
  write_json(out, points);
  if (profile_out != nullptr) write_profiles(profile_out, points);
  if (stalled) {
    std::fprintf(stderr, "bench_scale: watchdog stall (see log above)\n");
    return 3;
  }
  return 0;
}
