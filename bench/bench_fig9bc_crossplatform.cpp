// Figure 9(b,c): cross-platform comparison of the three design choices for
// a 24-logical-node cluster hosting a mixed workload:
//   Native   — 24 Hadoop nodes on 24 PMs
//   Virtual  — 24 VM nodes packed on 12 PMs
//   HybridMR — 12 native nodes + 12 VM nodes on 6 PMs (18 PMs total),
//              scheduled by HybridMR
// Reported: per-benchmark JCT (9b) and energy / servers / utilization /
// performance-per-energy (9c). Run at half scale (12 logical nodes) for
// speed; all ratios are scale-free.
#include "common.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

constexpr double kScale = 0.25;

struct PlatformResult {
  std::vector<double> jcts;   // per benchmark
  double mean_jct = 0;
  double energy_wh = 0;
  int servers = 0;
  double utilization = 0;
  double perf_per_energy = 0;
};

std::vector<mapred::JobSpec> jobs_under_test() {
  std::vector<mapred::JobSpec> out;
  for (const auto& b : workload::all_benchmarks()) {
    out.push_back(b.input_gb > 2 ? b.with_input_gb(b.input_gb * kScale) : b);
  }
  return out;
}

PlatformResult run_platform(const std::string& platform) {
  TestBed bed;
  // Interactive tenants: the traditional native design isolates them on
  // dedicated servers; virtualized designs consolidate them onto VMs.
  std::vector<cluster::ExecutionSite*> app_sites;
  if (platform == "native") {
    bed.add_native_nodes(12);
    for (auto* m : bed.add_plain_machines(4)) app_sites.push_back(m);
  } else if (platform == "virtual") {
    bed.add_virtual_nodes(6, 2);
    for (auto* host : bed.add_plain_machines(2)) {
      app_sites.push_back(bed.add_plain_vm(*host));
      app_sites.push_back(bed.add_plain_vm(*host));
    }
  } else {
    bed.add_native_nodes(6);
    bed.add_virtual_nodes(3, 2);
    // Hybrid consolidates the tenants with the batch VMs (no extra PMs).
  }

  core::HybridMROptions options;
  options.enable_phase1 = platform == "hybrid";
  options.enable_drm = platform == "hybrid";
  options.enable_ips = platform == "hybrid";
  options.phase1.training_cluster_sizes = {2};
  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr(), options);
  hybrid.start();

  std::vector<interactive::InteractiveApp*> apps;
  apps.push_back(&hybrid.deploy_interactive(
      interactive::rubis_params(), 300,
      app_sites.empty() ? nullptr : app_sites[0]));
  apps.push_back(&hybrid.deploy_interactive(
      interactive::tpcw_params(), 250,
      app_sites.size() > 1 ? app_sites[1] : nullptr));

  std::vector<mapred::Job*> jobs;
  for (const auto& spec : jobs_under_test()) {
    jobs.push_back(platform == "hybrid" ? hybrid.submit(spec)
                                        : bed.mr().submit(spec));
  }
  bool all_done = false;
  while (!all_done) {
    bed.sim().run_until(bed.sim().now() + 300);
    all_done = true;
    for (auto* j : jobs) all_done = all_done && j->finished();
  }
  // Energy and utilization are accounted over a fixed operating window
  // (the data center runs continuously; idle servers still burn power).
  const double end = 3600;
  if (bed.sim().now() < end) bed.run_until(end);
  hybrid.stop();

  PlatformResult r;
  for (auto* j : jobs) {
    r.jcts.push_back(j->jct());
    r.mean_jct += j->jct() / jobs.size();
  }
  r.energy_wh = bed.cluster().energy_joules(0, end).value() / 3600.0;
  r.servers = static_cast<int>(bed.cluster().machines().size());
  r.utilization =
      bed.cluster().mean_utilization(cluster::ResourceKind::kCpu, 0, end);
  r.perf_per_energy = 1e6 / (r.mean_jct * r.energy_wh);
  for (auto* a : apps) a->stop();
  return r;
}

}  // namespace

int main() {
  const auto native = run_platform("native");
  const auto virt = run_platform("virtual");
  const auto hybrid = run_platform("hybrid");
  const auto specs = jobs_under_test();

  harness::banner(
      "Figure 9(b): JCT per benchmark, normalized to the worst platform");
  Table fig9b({"benchmark", "Native", "Virtual", "HybridMR"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const double worst = std::max(
        {native.jcts[i], virt.jcts[i], hybrid.jcts[i]});
    fig9b.row({specs[i].name, Table::num(native.jcts[i] / worst, 2),
               Table::num(virt.jcts[i] / worst, 2),
               Table::num(hybrid.jcts[i] / worst, 2)});
  }
  fig9b.print();

  harness::banner(
      "Figure 9(c): platform metrics (normalized to the maximum)");
  Table fig9c({"metric", "Native", "Virtual", "HybridMR"});
  auto normalized_row = [&](const std::string& name, double n, double v,
                            double h) {
    const double worst = std::max({n, v, h});
    fig9c.row({name, Table::num(n / worst, 2), Table::num(v / worst, 2),
               Table::num(h / worst, 2)});
  };
  normalized_row("Perf/Energy", native.perf_per_energy,
                 virt.perf_per_energy, hybrid.perf_per_energy);
  normalized_row("Energy", native.energy_wh, virt.energy_wh,
                 hybrid.energy_wh);
  normalized_row("# of Servers", native.servers, virt.servers,
                 hybrid.servers);
  normalized_row("Utilization", native.utilization, virt.utilization,
                 hybrid.utilization);
  fig9c.print();

  std::printf("\n  raw: energy %.0f / %.0f / %.0f Wh, servers %d / %d / %d, "
              "cpu util %.1f%% / %.1f%% / %.1f%%, mean JCT %.0f / %.0f / "
              "%.0f s\n",
              native.energy_wh, virt.energy_wh, hybrid.energy_wh,
              native.servers, virt.servers, hybrid.servers,
              100 * native.utilization, 100 * virt.utilization,
              100 * hybrid.utilization, native.mean_jct, virt.mean_jct,
              hybrid.mean_jct);
  std::printf(
      "  paper: Native fastest, Virtual cheapest, HybridMR best "
      "performance/energy with ~43%% energy saving and ~45%% utilization "
      "gain vs Native\n");
  return 0;
}
