// Figure 1(a): % increase in JCT of the six benchmarks on a virtual cluster
// (1, 2, 4 VMs per PM) relative to the equivalent physical cluster.
// Figure 1(b): absolute Sort JCT at 1 / 8 / 16 GB under the same densities.
//
// "Equivalent" means equal physical hardware: k VMs per PM on the same PMs
// that the native baseline uses, with reduce parallelism pinned.
#include "common.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

// A smaller PM pool keeps the sweep quick; inputs stay at the paper's full
// sizes so task counts exceed slot counts and waves stay full (the regime
// the paper measured).
constexpr int kPms = 12;

double penalty_pct(const mapred::JobSpec& base, int vms_per_pm) {
  // Reduce parallelism scales with node count, as Hadoop deployments do.
  const double native = native_jct(base, kPms);
  const double virt = virtual_jct(base, kPms, vms_per_pm);
  return 100.0 * (virt - native) / native;
}

}  // namespace

int main() {
  harness::banner(
      "Figure 1(a): % increase in JCT on virtual vs equivalent physical "
      "cluster (12 PMs, paper-size inputs)");
  Table fig1a({"benchmark", "class", "1-VM", "2-VM", "4-VM"});
  for (const auto& base : workload::all_benchmarks()) {
    std::vector<std::string> row{base.name, to_string(base.job_class)};
    for (int k : {1, 2, 4}) {
      row.push_back(Table::num(penalty_pct(base, k)) + "%");
    }
    fig1a.row(row);
  }
  fig1a.print();

  harness::banner("Figure 1(b): Sort JCT (s) vs data size and VM density");
  Table fig1b({"config", "Sort-1GB", "Sort-4GB", "Sort-8GB"});
  for (int k : {1, 2, 4}) {
    std::vector<std::string> row{std::to_string(k) + "-VM"};
    for (double gb : {1.0, 4.0, 8.0}) {
      const auto spec = sized(workload::sort_job(), gb);
      row.push_back(Table::num(virtual_jct(spec, kPms, k)));
    }
    fig1b.row(row);
  }
  {
    std::vector<std::string> row{"native"};
    for (double gb : {1.0, 4.0, 8.0}) {
      const auto spec = sized(workload::sort_job(), gb);
      row.push_back(Table::num(native_jct(spec, kPms)));
    }
    fig1b.row(row);
  }
  fig1b.print();

  harness::banner(
      "Figure 1(b) shape check: virtual-vs-native gap vs data size (2-VM)");
  Table gap({"data (GB)", "native JCT", "virtual JCT", "gap"});
  for (double gb : {1.0, 4.0, 8.0, 16.0}) {
    const auto spec = sized(workload::sort_job(), gb);
    const double n = native_jct(spec, kPms);
    const double v = virtual_jct(spec, kPms, 2);
    gap.row({Table::num(gb, 0), Table::num(n), Table::num(v),
             Table::pct((v - n) / n)});
  }
  gap.print();
  return 0;
}
