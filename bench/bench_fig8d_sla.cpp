// Figure 8(d): RUBiS web-server latency vs client population under three
// regimes: RUBiS alone, RUBiS + MapReduce under the default (FIFO,
// unmanaged) scheduler, and RUBiS + MapReduce under HybridMR (IPS active).
#include "common.h"

#include "stats/summary.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

enum class Regime { kAlone, kDefaultMr, kHybridMr };

double steady_latency_ms(int clients, Regime regime) {
  TestBed::Options bed_options;
  bed_options.scheduler = "fifo";
  TestBed bed(bed_options);
  // Four virtualized hosts, each with a RUBiS VM and a batch VM.
  std::vector<cluster::VirtualMachine*> app_vms;
  for (auto* host : bed.add_plain_machines(4)) {
    app_vms.push_back(bed.add_plain_vm(*host));
    auto* batch_vm = bed.add_plain_vm(*host);
    bed.hdfs().add_datanode(*batch_vm);
    bed.mr().add_tracker(*batch_vm);
  }
  bed.add_plain_machines(1);  // migration headroom

  core::HybridMROptions options;
  options.enable_phase1 = false;
  options.enable_drm = regime == Regime::kHybridMr;
  options.enable_ips = regime == Regime::kHybridMr;
  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr(), options);
  hybrid.start();

  std::vector<interactive::InteractiveApp*> apps;
  for (std::size_t i = 0; i < app_vms.size(); ++i) {
    apps.push_back(&hybrid.deploy_interactive(
        interactive::rubis_params(),
        clients / static_cast<int>(app_vms.size()), app_vms[i]));
  }
  if (regime != Regime::kAlone) {
    bed.sim().at(30, [&]() {
      bed.mr().submit(workload::sort_job().with_input_gb(4));
      bed.mr().submit(workload::wcount().with_input_gb(3));
    });
  }
  bed.run_until(600);
  hybrid.stop();

  // Median steady-state latency (robust to transient spikes while the
  // IPS converges).
  std::vector<double> samples;
  for (auto* app : apps) {
    for (const auto& s : app->response_series().samples()) {
      if (s.time >= 60) samples.push_back(s.value);
    }
    app->stop();
  }
  return stats::percentile(samples, 50) * 1000.0;
}

}  // namespace

int main() {
  harness::banner(
      "Figure 8(d): RUBiS latency (ms) vs clients — alone, with default "
      "MapReduce, and with HybridMR (SLA 2000 ms)");
  Table table({"clients", "RUBiS", "RUBiS+MR (default)",
               "RUBiS+MR (HybridMR)"});
  for (int clients : {400, 800, 1600, 2400, 3200, 4800, 6400}) {
    table.row({std::to_string(clients),
               Table::num(steady_latency_ms(clients, Regime::kAlone), 0),
               Table::num(steady_latency_ms(clients, Regime::kDefaultMr), 0),
               Table::num(steady_latency_ms(clients, Regime::kHybridMr), 0)});
  }
  table.print();
  std::printf(
      "  paper: HybridMR tracks the RUBiS-alone curve within the SLA until "
      "the client load itself saturates the VMs\n");
  return 0;
}
