// Figure 2: deployment studies.
//   (a) Same-Host vs Cross-Host consolidation of a 16-VM Hadoop cluster
//   (b) CPU-bound Kmeans under V1-1M-1R / V2-2M-4R / V4-4M-6R slot shapes
//   (c) native vs Dom-0 execution
//   (d) combined vs split TaskTracker/DataNode architecture
#include "common.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

double consolidation_jct(int hosts, int vms_per_host, double sort_gb) {
  TestBed bed;
  // Fixed paper-shape VMs (1 vCPU / 1 GB) regardless of packing density.
  bed.add_virtual_nodes(hosts, vms_per_host, /*partitioned=*/false);
  return bed.run_job(workload::sort_job().with_input_gb(sort_gb));
}

double kmeans_slots_jct(int vms_per_pm, int map_slots, int reduce_slots,
                        double gb) {
  TestBed bed;
  const auto [vcpus, memory] = bed.partitioned_vm_shape(vms_per_pm);
  auto hosts = bed.add_plain_machines(12);
  for (auto* host : hosts) {
    for (int i = 0; i < vms_per_pm; ++i) {
      auto* vm = bed.cluster().add_vm(*host, "", vcpus, memory);
      bed.hdfs().add_datanode(*vm);
      bed.mr().add_tracker(*vm, map_slots, reduce_slots);
    }
  }
  return bed.run_job(workload::kmeans().with_input_gb(gb));
}

}  // namespace

int main() {
  harness::banner(
      "Figure 2(a): Sort JCT (s), 16 VMs consolidated on 2 PMs (Same-Host) "
      "vs spread over 8 PMs (Cross-Host)");
  Table fig2a({"data (GB)", "Same-Host", "Cross-Host", "cross/same"});
  for (double gb : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    const double same = consolidation_jct(2, 8, gb);
    const double cross = consolidation_jct(8, 2, gb);
    fig2a.row({Table::num(gb, 0), Table::num(same), Table::num(cross),
               Table::num(cross / same, 2)});
  }
  fig2a.print();

  harness::banner(
      "Figure 2(b): Kmeans JCT (s) with more VMs and slots per PM "
      "(12 PMs; V1-1M-1R, V2-2M-4R, V4-4M-6R as per-PM slot totals)");
  Table fig2b({"config", "Kmeans-1GB", "Kmeans-4GB", "Kmeans-8GB"});
  struct Shape {
    const char* name;
    int vms;
    int maps_per_vm;
    int reduces_per_vm;
  };
  for (const Shape& s : {Shape{"V1-1M-1R", 1, 1, 1},
                         Shape{"V2-2M-4R", 2, 1, 2},
                         Shape{"V4-4M-6R", 4, 1, 2}}) {
    std::vector<std::string> row{s.name};
    for (double gb : {1.0, 4.0, 8.0}) {
      row.push_back(Table::num(
          kmeans_slots_jct(s.vms, s.maps_per_vm, s.reduces_per_vm, gb)));
    }
    fig2b.row(row);
  }
  fig2b.print();

  harness::banner("Figure 2(c): native vs Dom-0 JCT (normalized to native)");
  Table fig2c({"benchmark", "native (s)", "Dom-0 (s)", "Dom-0/native"});
  for (const auto& base : workload::all_benchmarks()) {
    TestBed nat;
    nat.add_native_nodes(8);
    const double n = nat.run_job(base);
    TestBed dom0;
    dom0.add_dom0_nodes(8);
    const double d = dom0.run_job(base);
    fig2c.row({base.name, Table::num(n), Table::num(d),
               Table::num(d / n, 3)});
  }
  fig2c.print();

  harness::banner(
      "Figure 2(d): combined vs split TaskTracker/DataNode architecture "
      "(8 hosts x 2 compute VMs; normalized to combined)");
  Table fig2d({"benchmark", "combined (s)", "split (s)", "split/combined"});
  double gain_sum = 0;
  int gain_n = 0;
  for (const auto& base : workload::all_benchmarks()) {
    TestBed combined;
    combined.add_virtual_nodes(8, 2);
    const double c = combined.run_job(base);
    TestBed split;
    split.add_split_nodes(8, 2);
    const double s = split.run_job(base);
    fig2d.row({base.name, Table::num(c), Table::num(s),
               Table::num(s / c, 3)});
    gain_sum += 1.0 - s / c;
    ++gain_n;
  }
  fig2d.print();
  std::printf("  mean split improvement: %.1f%% (paper: 12.8%%)\n",
              100.0 * gain_sum / gain_n);
  return 0;
}
