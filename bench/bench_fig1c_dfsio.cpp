// Figure 1(c): HDFS performance on virtual Hadoop — TestDFSIO read/write
// average I/O rate and throughput on the virtual cluster, normalized to the
// equivalent native cluster, versus data size.
#include "common.h"

#include "storage/dfsio.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

struct Rates {
  double read_io = 0;
  double write_io = 0;
  double read_tput = 0;
  double write_tput = 0;
};

Rates run_dfsio(bool virtualized, double file_mb) {
  TestBed bed;
  std::vector<cluster::ExecutionSite*> sites =
      virtualized ? bed.add_virtual_nodes(8, 2) : bed.add_native_nodes(8);
  storage::DfsIoBenchmark dfsio(bed.sim(), bed.hdfs());
  Rates r;
  const auto w = dfsio.run_write(sites, sim::MegaBytes{file_mb});
  r.write_io = w.avg_io_rate_mbps.value();
  r.write_tput = w.throughput_mbps.value();
  const auto rd = dfsio.run_read(sites, sim::MegaBytes{file_mb});
  r.read_io = rd.avg_io_rate_mbps.value();
  r.read_tput = rd.throughput_mbps.value();
  return r;
}

}  // namespace

int main() {
  harness::banner(
      "Figure 1(c): TestDFSIO on the virtual cluster, normalized to native "
      "(8 PMs native vs 16 VMs on 8 PMs; per-node file of the given size)");
  Table table({"data (GB)", "R-IO", "W-IO", "R-Tput", "W-Tput"});
  for (double gb : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double file_mb = gb * 1024.0 / 8.0;  // spread across 8 writers
    const Rates native = run_dfsio(false, file_mb);
    const Rates virt = run_dfsio(true, file_mb);
    table.row({Table::num(gb, 0),
               Table::num(virt.read_io / native.read_io, 2),
               Table::num(virt.write_io / native.write_io, 2),
               Table::num(virt.read_tput / native.read_tput, 2),
               Table::num(virt.write_tput / native.write_tput, 2)});
  }
  table.print();
  return 0;
}
