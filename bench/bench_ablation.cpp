// Ablation studies for HybridMR's design choices (DESIGN.md §3):
//   A. IPS action ladder: which mitigation mechanisms matter
//   B. DRM control epoch length
//   C. Speculative execution under injected stragglers
//   D. Task scheduler policy (FIFO vs Fair) under a multi-job stream
//   E. Phase I overhead threshold sweep
#include "common.h"

#include "stats/summary.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

// --- A: IPS mechanisms -----------------------------------------------------

double ips_violation_fraction(bool throttle_only, bool allow_requeue,
                              bool allow_migration) {
  TestBed bed;
  std::vector<cluster::VirtualMachine*> app_vms;
  for (auto* host : bed.add_plain_machines(2)) {
    app_vms.push_back(bed.add_plain_vm(*host));
    auto* batch_vm = bed.add_plain_vm(*host);
    bed.hdfs().add_datanode(*batch_vm);
    bed.mr().add_tracker(*batch_vm);
  }
  bed.add_plain_machines(1);

  core::HybridMROptions options;
  options.enable_phase1 = false;
  options.ips.allow_requeue = allow_requeue;
  options.ips.allow_vm_migration = allow_migration;
  if (throttle_only) options.ips.max_actions_per_epoch = 1;
  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr(), options);
  hybrid.start();
  auto& rubis = hybrid.deploy_interactive(interactive::rubis_params(), 700,
                                          app_vms[0]);
  auto& olio = hybrid.deploy_interactive(interactive::olio_params(), 600,
                                         app_vms[1]);
  bed.sim().at(60, [&]() {
    bed.mr().submit(workload::sort_job().with_input_gb(4));
    bed.mr().submit(workload::twitter().with_input_gb(3));
  });
  bed.run_until(1200);
  hybrid.stop();
  const double f =
      (interactive::SlaMonitor::violation_fraction(rubis, 60, 1200) +
       interactive::SlaMonitor::violation_fraction(olio, 60, 1200)) /
      2;
  rubis.stop();
  olio.stop();
  return f;
}

// --- B: DRM epoch sweep ----------------------------------------------------

double drm_gain(double epoch_s) {
  auto spec = workload::wcount().with_input_gb(4);
  TestBed plain;
  plain.add_virtual_nodes(4, 2);
  const double base = plain.run_job(spec);

  TestBed managed;
  managed.add_virtual_nodes(4, 2);
  core::Estimator estimator;
  core::DrmOptions options;
  options.epoch_s = epoch_s;
  core::DynamicResourceManager drm(managed.sim(), managed.mr(),
                                   managed.cluster(), estimator, options);
  drm.start();
  mapred::Job* job = managed.mr().submit(spec);
  while (!job->finished()) {
    managed.sim().run_until(managed.sim().now() + 120);
  }
  drm.stop();
  return (base - job->jct()) / base;
}

// --- C: speculation under stragglers ---------------------------------------

double straggler_jct(bool speculation) {
  TestBed::Options o;
  o.speculative_execution = speculation;
  TestBed bed(o);
  bed.add_native_nodes(8);
  mapred::Job* job = bed.mr().submit(workload::kmeans().with_input_gb(4));
  // Cripple a node shortly after launch: everything on it crawls.
  bed.sim().at(20, [&]() {
    for (auto* a : bed.mr().running_attempts()) {
      if (a->tracker().site().name() == "native0") {
        cluster::Resources caps = cluster::Resources::unbounded();
        caps.cpu = 0.05;
        caps.disk = 2;
        a->set_caps(caps);
      }
    }
  });
  bed.sim().run_until(20000);
  return job->finished() ? job->jct() : -1;
}

// --- D: FIFO vs Fair -------------------------------------------------------

struct PolicyOutcome {
  double mean_jct = 0;
  double shortest_jct = 0;  // responsiveness for small jobs
};

PolicyOutcome multi_job_jcts(const std::string& policy) {
  TestBed::Options o;
  o.scheduler = policy;
  TestBed bed(o);
  bed.add_native_nodes(8);
  std::vector<mapred::JobSpec> specs;
  for (const auto& b : workload::all_benchmarks()) {
    specs.push_back(b.input_gb > 2 ? b.with_input_gb(2) : b);
  }
  specs.push_back(workload::dist_grep().with_input_gb(0.25));  // a small job
  const auto jcts = bed.run_jobs(specs);
  PolicyOutcome out;
  out.mean_jct = stats::mean(jcts);
  out.shortest_jct = jcts.back();
  return out;
}

}  // namespace

int main() {
  harness::banner(
      "Ablation A: IPS aggressiveness (mean SLA-violation fraction; lower "
      "is better)");
  Table a({"configuration", "violation fraction"});
  a.row({"gentle (1 action/epoch, no requeue/migration)",
         Table::pct(ips_violation_fraction(true, false, false))});
  a.row({"default escalation, no requeue/migration",
         Table::pct(ips_violation_fraction(false, false, false))});
  a.row({"+ requeue", Table::pct(ips_violation_fraction(false, true,
                                                        false))});
  a.row({"+ VM migration (full ladder)",
         Table::pct(ips_violation_fraction(false, true, true))});
  a.print();

  harness::banner(
      "Ablation B: DRM control epoch (JCT reduction for Wcount on the "
      "virtual cluster)");
  Table b({"epoch (s)", "JCT reduction"});
  for (double epoch : {2.0, 5.0, 10.0, 30.0, 60.0}) {
    b.row({Table::num(epoch, 0), Table::pct(drm_gain(epoch))});
  }
  b.print();

  harness::banner(
      "Ablation C: speculative execution with one crippled node (Kmeans)");
  Table c({"speculation", "JCT (s)"});
  c.row({"off", Table::num(straggler_jct(false))});
  c.row({"on", Table::num(straggler_jct(true))});
  c.print();

  harness::banner(
      "Ablation D: task scheduler policy, six big jobs plus one small job");
  Table d({"policy", "mean JCT (s)", "small-job JCT (s)"});
  const auto fifo = multi_job_jcts("fifo");
  const auto fair = multi_job_jcts("fair");
  d.row({"fifo", Table::num(fifo.mean_jct), Table::num(fifo.shortest_jct)});
  d.row({"fair", Table::num(fair.mean_jct), Table::num(fair.shortest_jct)});
  d.print();
  return 0;
}
