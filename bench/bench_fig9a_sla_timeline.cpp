// Figure 9(a): response-time timeline of RUBiS and TPC-W collocated with
// MapReduce jobs; HybridMR's IPS detects the SLA excursions and migrates /
// throttles the interfering batch work, restoring latency.
#include "common.h"

using namespace hybridmr;
using namespace hybridmr::bench;

int main() {
  TestBed bed;
  std::vector<cluster::VirtualMachine*> app_vms;
  for (auto* host : bed.add_plain_machines(2)) {
    app_vms.push_back(bed.add_plain_vm(*host));
    auto* batch_vm = bed.add_plain_vm(*host);
    bed.hdfs().add_datanode(*batch_vm);
    bed.mr().add_tracker(*batch_vm);
  }
  bed.add_plain_machines(1);  // migration target

  core::HybridMROptions options;
  options.enable_phase1 = false;
  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr(), options);
  hybrid.start();

  auto& rubis = hybrid.deploy_interactive(interactive::rubis_params(), 900,
                                          app_vms[0]);
  auto& tpcw = hybrid.deploy_interactive(interactive::tpcw_params(), 700,
                                         app_vms[1]);

  // Batch work arrives ~10 minutes in (the paper's excursion at minute 12).
  bed.sim().at(10 * 60, [&]() {
    bed.mr().submit(workload::sort_job().with_input_gb(6));
    bed.mr().submit(workload::twitter().with_input_gb(4));
  });

  harness::banner(
      "Figure 9(a): response time (ms) of RUBiS and TPC-W over 35 minutes "
      "(SLA = 2000 ms; MapReduce jobs arrive at minute 10)");
  Table table({"minute", "RUBiS (ms)", "TPC-W (ms)", "IPS actions",
               "migrations"});
  auto snapshot = [&](int minute) {
    const auto& s = hybrid.ips().stats();
    table.row({std::to_string(minute),
               Table::num(rubis.response_time_s() * 1000, 0),
               Table::num(tpcw.response_time_s() * 1000, 0),
               std::to_string(s.throttles + s.pauses + s.requeues),
               std::to_string(s.vm_migrations)});
  };
  for (int minute = 1; minute <= 35; ++minute) {
    bed.sim().at(minute * 60, [&, minute]() { snapshot(minute); });
  }
  bed.run_until(35 * 60);
  hybrid.stop();
  table.print();

  std::printf(
      "\n  SLA violation fraction over the run: RUBiS %.1f%%, TPC-W %.1f%%\n",
      100 * interactive::SlaMonitor::violation_fraction(rubis, 0, 2100),
      100 * interactive::SlaMonitor::violation_fraction(tpcw, 0, 2100));
  std::printf(
      "  paper: violations around minutes 12-14 are detected and latency "
      "returns below the SLA after task migration\n");
  rubis.stop();
  tpcw.stop();
  return 0;
}
