// Figure 9(a): response-time timeline of RUBiS and TPC-W collocated with
// MapReduce jobs; HybridMR's IPS detects the SLA excursions and migrates /
// throttles the interfering batch work, restoring latency.
//
// The timeline is reconstructed after the run from shared telemetry — the
// per-app `app.<name>.response_s` time series and the kIpsAction trace
// events — instead of sampling live with sim-time callbacks.
#include "common.h"

#include "telemetry/telemetry.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

// Mean of all samples falling in minute `minute` (windows are 10 s, so six
// windows per minute), 0 when the app saw no samples there.
double minute_mean(const telemetry::TimeSeriesMetric& ts, int minute) {
  double sum = 0;
  std::uint64_t n = 0;
  for (const auto& w : ts.windows()) {
    if (w.start >= 60.0 * (minute - 1) && w.start < 60.0 * minute) {
      sum += w.sum;
      n += w.count;
    }
  }
  return n ? sum / n : 0;
}

}  // namespace

int main() {
  TestBed bed;
  std::vector<cluster::VirtualMachine*> app_vms;
  for (auto* host : bed.add_plain_machines(2)) {
    app_vms.push_back(bed.add_plain_vm(*host));
    auto* batch_vm = bed.add_plain_vm(*host);
    bed.hdfs().add_datanode(*batch_vm);
    bed.mr().add_tracker(*batch_vm);
  }
  bed.add_plain_machines(1);  // migration target

  core::HybridMROptions options;
  options.enable_phase1 = false;
  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr(), options);
  hybrid.set_telemetry(bed.telemetry());
  hybrid.start();

  auto& rubis = hybrid.deploy_interactive(interactive::rubis_params(), 900,
                                          app_vms[0]);
  auto& tpcw = hybrid.deploy_interactive(interactive::tpcw_params(), 700,
                                         app_vms[1]);

  // Batch work arrives ~10 minutes in (the paper's excursion at minute 12).
  bed.sim().at(10 * 60, [&]() {
    bed.mr().submit(workload::sort_job().with_input_gb(6));
    bed.mr().submit(workload::twitter().with_input_gb(4));
  });

  bed.run_until(35 * 60);
  hybrid.stop();

  harness::banner(
      "Figure 9(a): response time (ms) of RUBiS and TPC-W over 35 minutes "
      "(SLA = 2000 ms; MapReduce jobs arrive at minute 10)");
  if (const telemetry::Hub* tel = bed.telemetry()) {
    const auto* rubis_ts = tel->registry.find("app.rubis.response_s");
    const auto* tpcw_ts = tel->registry.find("app.tpcw.response_s");
    Table table({"minute", "RUBiS (ms)", "TPC-W (ms)", "IPS actions",
                 "migrations"});
    for (int minute = 1; minute <= 35; ++minute) {
      // Cumulative IPS activity up to this minute, straight off the trace.
      int actions = 0;
      int migrations = 0;
      for (const auto& e : tel->trace.events()) {
        if (e.kind != telemetry::EventKind::kIpsAction ||
            e.time_s > 60.0 * minute) {
          continue;
        }
        if (e.name == "migrate_vm") {
          ++migrations;
        } else if (e.name != "restore") {
          ++actions;
        }
      }
      table.row({std::to_string(minute),
                 Table::num(1000 * minute_mean(*rubis_ts->series, minute), 0),
                 Table::num(1000 * minute_mean(*tpcw_ts->series, minute), 0),
                 std::to_string(actions), std::to_string(migrations)});
    }
    table.print();
  } else {
    std::printf("  (timeline needs HYBRIDMR_TELEMETRY=ON; totals: %d IPS "
                "actions, %d migrations)\n",
                hybrid.ips().stats().throttles + hybrid.ips().stats().pauses +
                    hybrid.ips().stats().requeues,
                hybrid.ips().stats().vm_migrations);
  }

  std::printf(
      "\n  SLA violation fraction over the run: RUBiS %.1f%%, TPC-W %.1f%%\n",
      100 * interactive::SlaMonitor::violation_fraction(rubis, 0, 2100),
      100 * interactive::SlaMonitor::violation_fraction(tpcw, 0, 2100));
  std::printf(
      "  paper: violations around minutes 12-14 are detected and latency "
      "returns below the SLA after task migration\n");
  rubis.stop();
  tpcw.stop();
  return 0;
}
