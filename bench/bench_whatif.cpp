// Capacity planner on the what-if engine: sweep many forked scenarios from
// ONE warmed simulation and compare against re-running each scenario from a
// cold start. The point of the whole-engine fork (docs/WHATIF.md): the
// expensive part of a what-if — building the cluster, ingesting HDFS
// blocks, warming the schedulers into a representative mid-chaos state —
// is paid once; every scenario after that is a copy-on-write fork(2) that
// only pays for its own lookahead horizon.
//
// Each scenario perturbs the warmed engine by index (which machine to
// crash, which extra job to inject, when) and reports the horizon outcome
// (batch progress, app response, makespan damage) through the fork pipe.
// The same scenario function drives the cold baseline, so the wall-clock
// comparison is like for like. Everything a child reports is simulated
// state — no PIDs, no wall clock — so the sweep fingerprint printed by
// --fingerprint is identical for identical seeds; ci.sh diffs two
// same-seed sweeps in its whatif stage.
//
// Emits google-benchmark-shaped JSON (--out) with mean per-scenario wall
// times for "whatif/forked" and "whatif/cold"; BENCH_whatif.json gates
// cold/forked >= 5x via a perf_gate.py ratio rule (hardware-independent:
// both sides run in this same process on this same machine).
//
// Usage: bench_whatif [--seed N] [--scenarios N] [--cold K] [--out FILE]
//                     [--fingerprint]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/hybridmr.h"
#include "faults/injector.h"
#include "harness/table.h"
#include "harness/testbed.h"
#include "interactive/presets.h"
#include "workload/benchmarks.h"

namespace {

using namespace hybridmr;

// A benchmark harness is the one place where wall-clock time is the
// measurand rather than a determinism hazard: nothing inside the simulation
// ever sees these readings.
using WallClock = std::chrono::steady_clock;  // sim-lint: allow(wall-clock)

constexpr double kWarmUntil = 240.0;   // shared prefix every scenario reuses
constexpr double kHorizon = 30.0;      // simulated seconds per scenario

// The warmed engine: a fig8-class virtual cluster mid-chaos, with a
// collocated interactive app and a heterogeneous batch in flight.
struct Engine {
  explicit Engine(std::uint64_t seed) {
    harness::TestBed::Options o;
    o.seed = seed;
    o.telemetry = false;
    o.calibration.hdfs_replicas = 3;
    o.faults.one_shot.push_back({faults::FaultSpec::Kind::kMachineCrash,
                                 /*at=*/30.0, "vhost1", sim::Duration{60.0}});
    o.faults.task_failure_rate = 0.02;
    o.faults.rate_horizon_s = 400;
    o.faults.seed = seed ^ 0x9e3779b9;
    bed = std::make_unique<harness::TestBed>(o);
    sites = bed->add_virtual_nodes(/*hosts=*/24, /*vms_per_host=*/2);

    core::HybridMROptions options;
    options.enable_phase1 = false;
    hybrid = std::make_unique<core::HybridMRScheduler>(
        bed->sim(), bed->cluster(), bed->hdfs(), bed->mr(), options);
    hybrid->start();
    hybrid->deploy_interactive(interactive::olio_params(), 1100, sites[0]);
    // One fig8-class wave per 8 hosts, as in bench_scale: the warmed
    // prefix carries real batch state worth amortizing.
    for (int w = 0; w < 3; ++w) {
      bed->mr().submit(workload::sort_job().with_input_gb(2.0));
      bed->mr().submit(workload::dist_grep().with_input_gb(4.0));
      bed->mr().submit(workload::wcount().with_input_gb(2.0));
    }
  }

  // One capacity-planning scenario, perturbed by index: crash a machine,
  // inject an extra job, then run the horizon and report what happened.
  // Runs identically in a forked child and in a cold replica.
  std::string scenario(int i) {
    const int victim = 1 + i % 5;  // vhost1..vhost5 (vhost0 hosts the app)
    const double crash_at = bed->sim().now() + 2.0 + (i % 4);
    if (bed->faults() != nullptr && i % 7 != 0) {  // some scenarios: no crash
      auto* m = bed->cluster().machine("vhost" + std::to_string(victim));
      bed->sim().at(crash_at, [this, m] {
        if (m != nullptr) bed->faults()->crash_machine(*m, sim::Duration{40.0});
      });
    }
    switch (i % 3) {
      case 0: bed->mr().submit(workload::sort_job().with_input_gb(0.5)); break;
      case 1: bed->mr().submit(workload::pi_est()); break;
      default: break;  // pure capacity probe: no extra load
    }
    bed->run_until(bed->sim().now() + kHorizon);

    double done = 0;
    double makespan = 0;
    int finished = 0;
    for (const auto& job : bed->mr().jobs()) {
      done += job->maps_done() + job->reduces_done();
      if (job->finished()) {
        ++finished;
        makespan = std::max(makespan, job->finish_time());
      }
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "i=%d done=%.17g finished=%d makespan=%.17g resp=%.17g",
                  i, done, finished, makespan,
                  hybrid->apps().front()->response_time_s());
    return buf;
  }

  std::unique_ptr<harness::TestBed> bed;
  std::unique_ptr<core::HybridMRScheduler> hybrid;
  std::vector<cluster::ExecutionSite*> sites;
};

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

double ms_since(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  int scenarios = 120;
  int cold = 8;
  const char* out_path = nullptr;
  bool fingerprint = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--scenarios") == 0 && i + 1 < argc) {
      scenarios = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cold") == 0 && i + 1 < argc) {
      cold = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fingerprint") == 0) {
      fingerprint = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_whatif [--seed N] [--scenarios N] [--cold K] "
                   "[--out FILE] [--fingerprint]\n");
      return 2;
    }
  }

  harness::banner("What-if capacity sweep: warmed forks vs cold starts");

  // --- warmed sweep: one engine, `scenarios` forks --------------------
  const auto warm_t0 = WallClock::now();
  Engine engine(seed);
  engine.bed->run_until(kWarmUntil);
  const double warm_ms = ms_since(warm_t0);

  std::uint64_t sweep_hash = 1469598103934665603ull;
  int failed = 0;
  const auto fork_t0 = WallClock::now();
  for (int i = 0; i < scenarios; ++i) {
    const whatif::ForkResult r = engine.bed->whatif().run_isolated(
        [&engine, i] { return engine.scenario(i); });
    if (!r.ok) ++failed;
    sweep_hash ^= fnv1a(r.payload);
    sweep_hash *= 1099511628211ull;
  }
  const double forked_ms = ms_since(fork_t0) / std::max(1, scenarios);

  // --- cold baseline: rebuild + rewarm + same scenario, per scenario --
  const auto cold_t0 = WallClock::now();
  for (int i = 0; i < cold; ++i) {
    Engine replica(seed);
    replica.bed->run_until(kWarmUntil);
    const std::string payload = replica.scenario(i);
    if (payload.empty()) ++failed;
  }
  const double cold_ms = ms_since(cold_t0) / std::max(1, cold);

  harness::Table table({"mode", "scenarios", "per_scenario_ms", "notes"});
  char warm_note[64];
  std::snprintf(warm_note, sizeof(warm_note), "one-time warmup %.0f ms",
                warm_ms);
  table.row({"forked", std::to_string(scenarios),
             std::to_string(forked_ms), warm_note});
  table.row({"cold", std::to_string(cold), std::to_string(cold_ms),
             "build + warm + horizon each"});
  table.print();
  std::printf("speedup: %.1fx per scenario (%d child failures)\n",
              forked_ms > 0 ? cold_ms / forked_ms : 0.0, failed);
  if (fingerprint) {
    std::printf("sweep_fingerprint: %016llx\n",
                static_cast<unsigned long long>(sweep_hash));
  }

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_whatif: cannot write %s\n", out_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    std::fprintf(f,
                 "    {\"name\": \"whatif/forked\", \"real_time\": %.3f, "
                 "\"time_unit\": \"ms\", \"scenarios\": %d, "
                 "\"child_failures\": %d, \"warmup_ms\": %.3f},\n",
                 forked_ms, scenarios, failed, warm_ms);
    std::fprintf(f,
                 "    {\"name\": \"whatif/cold\", \"real_time\": %.3f, "
                 "\"time_unit\": \"ms\", \"scenarios\": %d}\n",
                 cold_ms, cold);
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("bench_whatif: wrote %s\n", out_path);
  }
  return failed == 0 ? 0 : 1;
}
