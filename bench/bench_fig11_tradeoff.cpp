// Figure 11: hybrid-configuration design trade-off — 20 cluster splits
// (#PMs native, #VMs) running the same workload mix, scored by
// Performance/Energy. Interior hybrid splits beat the native-only and
// virtual-only extremes.
#include <algorithm>

#include "common.h"

#include "core/hybridmr.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

struct Config {
  int native_nodes;   // native Hadoop nodes (1 per PM)
  int virtual_nodes;  // VM Hadoop nodes (2 per PM)
  int clients;        // interactive tenant load
};

struct Score {
  Config config{};
  double mean_jct = 0;
  double energy_wh = 0;
  int servers = 0;
  double perf_per_energy = 0;
};

Score evaluate(const Config& config) {
  TestBed bed;
  std::vector<cluster::ExecutionSite*> app_sites;
  if (config.native_nodes > 0) bed.add_native_nodes(config.native_nodes);
  if (config.virtual_nodes > 0) {
    bed.add_virtual_nodes(config.virtual_nodes / 2, 2);
  } else {
    // Native-only: tenants need dedicated isolated servers, provisioned
    // with 2x headroom for their bursty peaks (the over-provisioning the
    // paper's premise rests on — consolidation is unsafe without
    // virtualization).
    for (auto* m : bed.add_plain_machines(4)) app_sites.push_back(m);
  }

  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr());
  hybrid.start();
  std::vector<interactive::InteractiveApp*> apps;
  apps.push_back(&hybrid.deploy_interactive(
      interactive::rubis_params(), config.clients,
      app_sites.empty() ? nullptr : app_sites[0]));
  apps.push_back(&hybrid.deploy_interactive(
      interactive::olio_params(), config.clients * 4 / 5,
      app_sites.size() > 1 ? app_sites[1] : nullptr));

  std::vector<mapred::JobSpec> specs;
  for (const auto& b : workload::all_benchmarks()) {
    specs.push_back(b.input_gb > 2 ? b.with_input_gb(b.input_gb * 0.15) : b);
  }
  std::vector<mapred::Job*> jobs;
  for (const auto& spec : specs) jobs.push_back(bed.mr().submit(spec));
  bool all_done = false;
  while (!all_done) {
    bed.sim().run_until(bed.sim().now() + 300);
    all_done = true;
    for (auto* j : jobs) all_done = all_done && j->finished();
  }
  const double end = std::max(3600.0, bed.sim().now());
  if (bed.sim().now() < end) bed.run_until(end);
  hybrid.stop();

  Score s;
  s.config = config;
  for (auto* j : jobs) s.mean_jct += j->jct() / jobs.size();
  s.energy_wh = bed.cluster().energy_joules(0, end).value() / 3600.0;
  s.servers = static_cast<int>(bed.cluster().machines().size());
  s.perf_per_energy = 1e6 / (s.mean_jct * s.energy_wh);
  for (auto* a : apps) a->stop();
  return s;
}

}  // namespace

int main() {
  // 20 configurations: 12 logical Hadoop nodes physicalized differently
  // (from all-native on 12 PMs to all-virtual on 6 PMs), under two tenant
  // load levels — the paper's random sweep across its 24-PM/48-VM pool.
  std::vector<Config> configs;
  for (int clients : {300, 500}) {
    for (int native : {12, 10, 8, 6, 4, 2, 0}) {
      configs.push_back({native, 12 - native, clients});
    }
  }
  configs.push_back({12, 0, 700});
  configs.push_back({6, 6, 700});
  configs.push_back({0, 12, 700});
  configs.push_back({12, 0, 150});
  configs.push_back({6, 6, 150});
  configs.push_back({0, 12, 150});

  harness::banner(
      "Figure 11: Performance/Energy across 20 hybrid configurations "
      "(12 Hadoop nodes physicalized differently; tenants consolidated "
      "onto VMs when any exist)");
  Table table({"config", "native nodes", "VM nodes", "PMs", "clients",
               "mean JCT (s)", "energy (Wh)", "perf/energy"});
  Score best;
  Score worst;
  bool first = true;
  int id = 0;
  for (const auto& config : configs) {
    const Score s = evaluate(config);
    table.row({"C" + std::to_string(++id),
               std::to_string(config.native_nodes),
               std::to_string(config.virtual_nodes),
               std::to_string(s.servers), std::to_string(config.clients),
               Table::num(s.mean_jct), Table::num(s.energy_wh),
               Table::num(s.perf_per_energy, 3)});
    if (first || s.perf_per_energy > best.perf_per_energy) best = s;
    if (first || s.perf_per_energy < worst.perf_per_energy) worst = s;
    first = false;
  }
  table.print();
  std::printf(
      "\n  best:  %d native + %d VM nodes at %d clients (perf/energy "
      "%.3f)\n  worst: %d native + %d VM nodes at %d clients (perf/energy "
      "%.3f)\n  paper: an interior hybrid split (C7) wins; an extreme "
      "(C17, all native) loses\n",
      best.config.native_nodes, best.config.virtual_nodes,
      best.config.clients, best.perf_per_energy, worst.config.native_nodes,
      worst.config.virtual_nodes, worst.config.clients,
      worst.perf_per_energy);
  return 0;
}
