// Figure 5: dependence of job completion time on cluster size and data size
// — the empirical basis of the Phase I profiler's extrapolation rules.
//   (a) end-to-end JCT vs cluster size (Sort / PiEst / DistGrep, normalized)
//   (b) map-phase time vs cluster size (Sort, 2-5 GB)
//   (c) reduce-phase time vs cluster size (Sort, 2-5 GB)
//   (d) JCT vs data size for virtual clusters C1..C16
#include "common.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

struct PhaseTimes {
  double jct = 0;
  double map_s = 0;
  double reduce_s = 0;
};

PhaseTimes run_virtual(const mapred::JobSpec& spec, int vms) {
  TestBed bed;
  if (vms >= 2) bed.add_virtual_nodes(vms / 2, 2);
  if (vms % 2 == 1) bed.add_virtual_nodes(1, 1);
  mapred::Job* job = bed.mr().submit(spec);
  bed.sim().run();
  return {job->jct(), job->map_phase_seconds(), job->reduce_phase_seconds()};
}

}  // namespace

int main() {
  const std::vector<int> cluster_sizes{2, 4, 8, 16, 24, 32, 40};

  harness::banner(
      "Figure 5(a): end-to-end JCT vs cluster size (VMs), normalized to the "
      "smallest cluster");
  Table fig5a({"VMs", "Sort", "PiEst", "DistGrep"});
  std::vector<std::vector<double>> jcts(3);
  for (int vms : cluster_sizes) {
    jcts[0].push_back(run_virtual(workload::sort_job().with_input_gb(5), vms).jct);
    jcts[1].push_back(run_virtual(workload::pi_est(), vms).jct);
    jcts[2].push_back(
        run_virtual(workload::dist_grep().with_input_gb(5), vms).jct);
  }
  for (std::size_t i = 0; i < cluster_sizes.size(); ++i) {
    fig5a.row({std::to_string(cluster_sizes[i]),
               Table::num(jcts[0][i] / jcts[0][0], 3),
               Table::num(jcts[1][i] / jcts[1][0], 3),
               Table::num(jcts[2][i] / jcts[2][0], 3)});
  }
  fig5a.print();

  harness::banner(
      "Figure 5(b,c): Sort map / reduce phase times (s) vs cluster size");
  Table fig5bc({"VMs", "map 2GB", "map 3GB", "map 5GB", "reduce 2GB",
                "reduce 3GB", "reduce 5GB"});
  for (int vms : {2, 4, 6, 8, 10, 12}) {
    std::vector<std::string> row{std::to_string(vms)};
    std::vector<std::string> reduce_cells;
    for (double gb : {2.0, 3.0, 5.0}) {
      const auto t = run_virtual(workload::sort_job().with_input_gb(gb), vms);
      row.push_back(Table::num(t.map_s));
      reduce_cells.push_back(Table::num(t.reduce_s));
    }
    row.insert(row.end(), reduce_cells.begin(), reduce_cells.end());
    fig5bc.row(row);
  }
  fig5bc.print();

  harness::banner(
      "Figure 5(d): Sort JCT (s) vs data size for virtual clusters C1..C16");
  Table fig5d({"data (GB)", "C1", "C2", "C4", "C8", "C16"});
  for (double gb : {2.5, 5.0, 7.5, 10.0, 15.0}) {
    std::vector<std::string> row{Table::num(gb, 1)};
    for (int vms : {1, 2, 4, 8, 16}) {
      row.push_back(
          Table::num(run_virtual(workload::sort_job().with_input_gb(gb), vms)
                         .jct));
    }
    fig5d.row(row);
  }
  fig5d.print();
  return 0;
}
