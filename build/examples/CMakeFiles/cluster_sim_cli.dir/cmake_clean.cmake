file(REMOVE_RECURSE
  "CMakeFiles/cluster_sim_cli.dir/cluster_sim_cli.cpp.o"
  "CMakeFiles/cluster_sim_cli.dir/cluster_sim_cli.cpp.o.d"
  "cluster_sim_cli"
  "cluster_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
