# Empty dependencies file for sla_guardian.
# This may be replaced when dependencies are built.
