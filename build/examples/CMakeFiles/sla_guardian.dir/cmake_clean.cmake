file(REMOVE_RECURSE
  "CMakeFiles/sla_guardian.dir/sla_guardian.cpp.o"
  "CMakeFiles/sla_guardian.dir/sla_guardian.cpp.o.d"
  "sla_guardian"
  "sla_guardian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_guardian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
