# Empty dependencies file for adaptive_datacenter.
# This may be replaced when dependencies are built.
