file(REMOVE_RECURSE
  "CMakeFiles/adaptive_datacenter.dir/adaptive_datacenter.cpp.o"
  "CMakeFiles/adaptive_datacenter.dir/adaptive_datacenter.cpp.o.d"
  "adaptive_datacenter"
  "adaptive_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
