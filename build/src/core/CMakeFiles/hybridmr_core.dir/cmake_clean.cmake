file(REMOVE_RECURSE
  "CMakeFiles/hybridmr_core.dir/drm.cc.o"
  "CMakeFiles/hybridmr_core.dir/drm.cc.o.d"
  "CMakeFiles/hybridmr_core.dir/estimator.cc.o"
  "CMakeFiles/hybridmr_core.dir/estimator.cc.o.d"
  "CMakeFiles/hybridmr_core.dir/hybridmr.cc.o"
  "CMakeFiles/hybridmr_core.dir/hybridmr.cc.o.d"
  "CMakeFiles/hybridmr_core.dir/ips.cc.o"
  "CMakeFiles/hybridmr_core.dir/ips.cc.o.d"
  "CMakeFiles/hybridmr_core.dir/phase1.cc.o"
  "CMakeFiles/hybridmr_core.dir/phase1.cc.o.d"
  "CMakeFiles/hybridmr_core.dir/profile_db.cc.o"
  "CMakeFiles/hybridmr_core.dir/profile_db.cc.o.d"
  "CMakeFiles/hybridmr_core.dir/profiler.cc.o"
  "CMakeFiles/hybridmr_core.dir/profiler.cc.o.d"
  "CMakeFiles/hybridmr_core.dir/reconfigurator.cc.o"
  "CMakeFiles/hybridmr_core.dir/reconfigurator.cc.o.d"
  "libhybridmr_core.a"
  "libhybridmr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridmr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
