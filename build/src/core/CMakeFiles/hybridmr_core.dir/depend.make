# Empty dependencies file for hybridmr_core.
# This may be replaced when dependencies are built.
