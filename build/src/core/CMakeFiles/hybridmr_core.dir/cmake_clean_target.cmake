file(REMOVE_RECURSE
  "libhybridmr_core.a"
)
