
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/drm.cc" "src/core/CMakeFiles/hybridmr_core.dir/drm.cc.o" "gcc" "src/core/CMakeFiles/hybridmr_core.dir/drm.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/hybridmr_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/hybridmr_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/hybridmr.cc" "src/core/CMakeFiles/hybridmr_core.dir/hybridmr.cc.o" "gcc" "src/core/CMakeFiles/hybridmr_core.dir/hybridmr.cc.o.d"
  "/root/repo/src/core/ips.cc" "src/core/CMakeFiles/hybridmr_core.dir/ips.cc.o" "gcc" "src/core/CMakeFiles/hybridmr_core.dir/ips.cc.o.d"
  "/root/repo/src/core/phase1.cc" "src/core/CMakeFiles/hybridmr_core.dir/phase1.cc.o" "gcc" "src/core/CMakeFiles/hybridmr_core.dir/phase1.cc.o.d"
  "/root/repo/src/core/profile_db.cc" "src/core/CMakeFiles/hybridmr_core.dir/profile_db.cc.o" "gcc" "src/core/CMakeFiles/hybridmr_core.dir/profile_db.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/hybridmr_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/hybridmr_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/reconfigurator.cc" "src/core/CMakeFiles/hybridmr_core.dir/reconfigurator.cc.o" "gcc" "src/core/CMakeFiles/hybridmr_core.dir/reconfigurator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapred/CMakeFiles/hybridmr_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/interactive/CMakeFiles/hybridmr_interactive.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hybridmr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hybridmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hybridmr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hybridmr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
