# Empty dependencies file for hybridmr_interactive.
# This may be replaced when dependencies are built.
