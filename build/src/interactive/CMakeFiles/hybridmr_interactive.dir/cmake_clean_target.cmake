file(REMOVE_RECURSE
  "libhybridmr_interactive.a"
)
