file(REMOVE_RECURSE
  "CMakeFiles/hybridmr_interactive.dir/app.cc.o"
  "CMakeFiles/hybridmr_interactive.dir/app.cc.o.d"
  "libhybridmr_interactive.a"
  "libhybridmr_interactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridmr_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
