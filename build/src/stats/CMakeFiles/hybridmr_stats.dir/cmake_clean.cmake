file(REMOVE_RECURSE
  "CMakeFiles/hybridmr_stats.dir/regression.cc.o"
  "CMakeFiles/hybridmr_stats.dir/regression.cc.o.d"
  "CMakeFiles/hybridmr_stats.dir/summary.cc.o"
  "CMakeFiles/hybridmr_stats.dir/summary.cc.o.d"
  "CMakeFiles/hybridmr_stats.dir/timeseries.cc.o"
  "CMakeFiles/hybridmr_stats.dir/timeseries.cc.o.d"
  "libhybridmr_stats.a"
  "libhybridmr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridmr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
