# Empty dependencies file for hybridmr_stats.
# This may be replaced when dependencies are built.
