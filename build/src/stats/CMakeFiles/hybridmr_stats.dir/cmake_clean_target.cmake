file(REMOVE_RECURSE
  "libhybridmr_stats.a"
)
