
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/hybridmr_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/hybridmr_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/machine.cc" "src/cluster/CMakeFiles/hybridmr_cluster.dir/machine.cc.o" "gcc" "src/cluster/CMakeFiles/hybridmr_cluster.dir/machine.cc.o.d"
  "/root/repo/src/cluster/migration.cc" "src/cluster/CMakeFiles/hybridmr_cluster.dir/migration.cc.o" "gcc" "src/cluster/CMakeFiles/hybridmr_cluster.dir/migration.cc.o.d"
  "/root/repo/src/cluster/resources.cc" "src/cluster/CMakeFiles/hybridmr_cluster.dir/resources.cc.o" "gcc" "src/cluster/CMakeFiles/hybridmr_cluster.dir/resources.cc.o.d"
  "/root/repo/src/cluster/workload.cc" "src/cluster/CMakeFiles/hybridmr_cluster.dir/workload.cc.o" "gcc" "src/cluster/CMakeFiles/hybridmr_cluster.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hybridmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hybridmr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
