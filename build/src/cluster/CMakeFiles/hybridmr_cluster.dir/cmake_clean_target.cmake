file(REMOVE_RECURSE
  "libhybridmr_cluster.a"
)
