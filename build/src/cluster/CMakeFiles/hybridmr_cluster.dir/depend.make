# Empty dependencies file for hybridmr_cluster.
# This may be replaced when dependencies are built.
