file(REMOVE_RECURSE
  "CMakeFiles/hybridmr_cluster.dir/cluster.cc.o"
  "CMakeFiles/hybridmr_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/hybridmr_cluster.dir/machine.cc.o"
  "CMakeFiles/hybridmr_cluster.dir/machine.cc.o.d"
  "CMakeFiles/hybridmr_cluster.dir/migration.cc.o"
  "CMakeFiles/hybridmr_cluster.dir/migration.cc.o.d"
  "CMakeFiles/hybridmr_cluster.dir/resources.cc.o"
  "CMakeFiles/hybridmr_cluster.dir/resources.cc.o.d"
  "CMakeFiles/hybridmr_cluster.dir/workload.cc.o"
  "CMakeFiles/hybridmr_cluster.dir/workload.cc.o.d"
  "libhybridmr_cluster.a"
  "libhybridmr_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridmr_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
