file(REMOVE_RECURSE
  "libhybridmr_mapred.a"
)
