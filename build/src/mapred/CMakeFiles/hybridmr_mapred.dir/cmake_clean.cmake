file(REMOVE_RECURSE
  "CMakeFiles/hybridmr_mapred.dir/engine.cc.o"
  "CMakeFiles/hybridmr_mapred.dir/engine.cc.o.d"
  "CMakeFiles/hybridmr_mapred.dir/scheduler.cc.o"
  "CMakeFiles/hybridmr_mapred.dir/scheduler.cc.o.d"
  "CMakeFiles/hybridmr_mapred.dir/task.cc.o"
  "CMakeFiles/hybridmr_mapred.dir/task.cc.o.d"
  "CMakeFiles/hybridmr_mapred.dir/tracker.cc.o"
  "CMakeFiles/hybridmr_mapred.dir/tracker.cc.o.d"
  "libhybridmr_mapred.a"
  "libhybridmr_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridmr_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
