# Empty compiler generated dependencies file for hybridmr_mapred.
# This may be replaced when dependencies are built.
