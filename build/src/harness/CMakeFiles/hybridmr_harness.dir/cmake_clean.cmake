file(REMOVE_RECURSE
  "CMakeFiles/hybridmr_harness.dir/table.cc.o"
  "CMakeFiles/hybridmr_harness.dir/table.cc.o.d"
  "CMakeFiles/hybridmr_harness.dir/testbed.cc.o"
  "CMakeFiles/hybridmr_harness.dir/testbed.cc.o.d"
  "libhybridmr_harness.a"
  "libhybridmr_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridmr_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
