# Empty compiler generated dependencies file for hybridmr_harness.
# This may be replaced when dependencies are built.
