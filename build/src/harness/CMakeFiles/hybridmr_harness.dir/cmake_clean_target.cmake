file(REMOVE_RECURSE
  "libhybridmr_harness.a"
)
