
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/dfsio.cc" "src/storage/CMakeFiles/hybridmr_storage.dir/dfsio.cc.o" "gcc" "src/storage/CMakeFiles/hybridmr_storage.dir/dfsio.cc.o.d"
  "/root/repo/src/storage/hdfs.cc" "src/storage/CMakeFiles/hybridmr_storage.dir/hdfs.cc.o" "gcc" "src/storage/CMakeFiles/hybridmr_storage.dir/hdfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hybridmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hybridmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hybridmr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
