file(REMOVE_RECURSE
  "libhybridmr_storage.a"
)
