file(REMOVE_RECURSE
  "CMakeFiles/hybridmr_storage.dir/dfsio.cc.o"
  "CMakeFiles/hybridmr_storage.dir/dfsio.cc.o.d"
  "CMakeFiles/hybridmr_storage.dir/hdfs.cc.o"
  "CMakeFiles/hybridmr_storage.dir/hdfs.cc.o.d"
  "libhybridmr_storage.a"
  "libhybridmr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridmr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
