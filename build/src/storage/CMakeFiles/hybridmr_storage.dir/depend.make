# Empty dependencies file for hybridmr_storage.
# This may be replaced when dependencies are built.
