file(REMOVE_RECURSE
  "libhybridmr_sim.a"
)
