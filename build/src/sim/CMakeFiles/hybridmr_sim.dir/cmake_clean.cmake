file(REMOVE_RECURSE
  "CMakeFiles/hybridmr_sim.dir/event_queue.cc.o"
  "CMakeFiles/hybridmr_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/hybridmr_sim.dir/simulation.cc.o"
  "CMakeFiles/hybridmr_sim.dir/simulation.cc.o.d"
  "libhybridmr_sim.a"
  "libhybridmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
