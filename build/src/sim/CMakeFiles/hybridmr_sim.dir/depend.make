# Empty dependencies file for hybridmr_sim.
# This may be replaced when dependencies are built.
