file(REMOVE_RECURSE
  "CMakeFiles/hybridmr_workload.dir/benchmarks.cc.o"
  "CMakeFiles/hybridmr_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/hybridmr_workload.dir/mix.cc.o"
  "CMakeFiles/hybridmr_workload.dir/mix.cc.o.d"
  "libhybridmr_workload.a"
  "libhybridmr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridmr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
