file(REMOVE_RECURSE
  "libhybridmr_workload.a"
)
