# Empty dependencies file for hybridmr_workload.
# This may be replaced when dependencies are built.
