# Empty dependencies file for core_deep_test.
# This may be replaced when dependencies are built.
