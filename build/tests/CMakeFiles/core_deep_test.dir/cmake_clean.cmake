file(REMOVE_RECURSE
  "CMakeFiles/core_deep_test.dir/core_deep_test.cc.o"
  "CMakeFiles/core_deep_test.dir/core_deep_test.cc.o.d"
  "core_deep_test"
  "core_deep_test.pdb"
  "core_deep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_deep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
