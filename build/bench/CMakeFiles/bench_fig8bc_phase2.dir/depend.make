# Empty dependencies file for bench_fig8bc_phase2.
# This may be replaced when dependencies are built.
