# Empty dependencies file for bench_fig1_virt_overhead.
# This may be replaced when dependencies are built.
