file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_virt_overhead.dir/bench_fig1_virt_overhead.cpp.o"
  "CMakeFiles/bench_fig1_virt_overhead.dir/bench_fig1_virt_overhead.cpp.o.d"
  "bench_fig1_virt_overhead"
  "bench_fig1_virt_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_virt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
