file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1c_dfsio.dir/bench_fig1c_dfsio.cpp.o"
  "CMakeFiles/bench_fig1c_dfsio.dir/bench_fig1c_dfsio.cpp.o.d"
  "bench_fig1c_dfsio"
  "bench_fig1c_dfsio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1c_dfsio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
