# Empty dependencies file for bench_fig1c_dfsio.
# This may be replaced when dependencies are built.
