# Empty dependencies file for bench_fig2_deployment.
# This may be replaced when dependencies are built.
