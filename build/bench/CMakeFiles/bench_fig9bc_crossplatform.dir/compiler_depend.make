# Empty compiler generated dependencies file for bench_fig9bc_crossplatform.
# This may be replaced when dependencies are built.
