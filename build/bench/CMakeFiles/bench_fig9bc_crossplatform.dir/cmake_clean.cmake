file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9bc_crossplatform.dir/bench_fig9bc_crossplatform.cpp.o"
  "CMakeFiles/bench_fig9bc_crossplatform.dir/bench_fig9bc_crossplatform.cpp.o.d"
  "bench_fig9bc_crossplatform"
  "bench_fig9bc_crossplatform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9bc_crossplatform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
