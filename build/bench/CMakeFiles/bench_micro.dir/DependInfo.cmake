
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cpp" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hybridmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/hybridmr_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hybridmr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/hybridmr_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hybridmr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/interactive/CMakeFiles/hybridmr_interactive.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hybridmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hybridmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hybridmr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
