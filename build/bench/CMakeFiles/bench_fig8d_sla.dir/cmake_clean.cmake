file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8d_sla.dir/bench_fig8d_sla.cpp.o"
  "CMakeFiles/bench_fig8d_sla.dir/bench_fig8d_sla.cpp.o.d"
  "bench_fig8d_sla"
  "bench_fig8d_sla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8d_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
