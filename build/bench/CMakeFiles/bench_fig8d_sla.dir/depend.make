# Empty dependencies file for bench_fig8d_sla.
# This may be replaced when dependencies are built.
