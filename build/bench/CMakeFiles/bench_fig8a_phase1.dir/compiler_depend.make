# Empty compiler generated dependencies file for bench_fig8a_phase1.
# This may be replaced when dependencies are built.
