# Empty compiler generated dependencies file for bench_fig9a_sla_timeline.
# This may be replaced when dependencies are built.
