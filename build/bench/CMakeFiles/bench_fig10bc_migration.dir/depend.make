# Empty dependencies file for bench_fig10bc_migration.
# This may be replaced when dependencies are built.
